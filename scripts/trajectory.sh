#!/usr/bin/env bash
# scripts/trajectory.sh BENCH.json TRAJECTORY.jsonl [label] — validate an
# mkss-bench/v1 document and append a one-line summary record to the perf
# trajectory log (results/bench_trajectory.jsonl in CI), so the sweep
# wall clock is queryable across PRs with nothing fancier than grep/jq.
set -euo pipefail

doc=$1
out=$2
label=${3:-}

python3 - "$doc" "$out" "$label" <<'EOF'
import json
import subprocess
import sys

doc = json.load(open(sys.argv[1]))
if doc.get("schema") != "mkss-bench/v1":
    sys.exit(f"trajectory: {sys.argv[1]} schema {doc.get('schema')!r}, want mkss-bench/v1")
if not doc.get("rows"):
    sys.exit(f"trajectory: {sys.argv[1]} has no rows — refusing to log an empty sweep")

try:
    commit = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        capture_output=True, text=True, check=True,
    ).stdout.strip()
except Exception:
    commit = "unknown"

rec = {
    "schema": "mkss-bench-trajectory/v1",
    "commit": commit,
    "figure": doc.get("figure"),
    "scenario": doc.get("scenario"),
    "sets_per_interval": doc.get("sets_per_interval"),
    "max_candidates": doc.get("max_candidates"),
    "wall_clock_ms": round(doc.get("wall_clock_ms", 0.0), 3),
}
if sys.argv[3]:
    rec["label"] = sys.argv[3]

with open(sys.argv[2], "a") as f:
    f.write(json.dumps(rec, separators=(",", ":")) + "\n")
print("trajectory: appended", json.dumps(rec, separators=(",", ":")))
EOF
