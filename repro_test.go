package repro

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestQuickstartNumbers(t *testing.T) {
	// The package-doc example: selective on the motivation set = 12.
	set := motivationSet()
	res, err := Simulate(set, Selective, RunConfig{HorizonMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveEnergy() != 12 {
		t.Errorf("energy = %v, want 12", res.ActiveEnergy())
	}
}

func TestDefaultHorizonIsHyperperiod(t *testing.T) {
	set := motivationSet() // (m,k)-hyperperiod = 20ms
	res, err := Simulate(set, ST, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Horizon != 20*Millisecond {
		t.Errorf("default horizon = %v, want 20ms", res.Horizon)
	}
}

func TestLoadSet(t *testing.T) {
	const doc = `{"tasks": [
	  {"name":"video", "period_ms":5, "deadline_ms":4, "wcet_ms":3, "m":2, "k":4},
	  {"period_ms":10, "wcet_ms":3, "m":1, "k":2}
	]}`
	s, err := LoadSet(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 2 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Tasks[0].Name != "video" {
		t.Errorf("name = %q", s.Tasks[0].Name)
	}
	// Deadline defaults to period.
	if s.Tasks[1].Deadline != s.Tasks[1].Period {
		t.Error("default deadline wrong")
	}
	// Exactly the motivation set: selective must give 12 again.
	res, err := Simulate(s, Selective, RunConfig{HorizonMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveEnergy() != 12 {
		t.Errorf("energy = %v, want 12", res.ActiveEnergy())
	}
}

func TestLoadSetRejectsGarbage(t *testing.T) {
	cases := []string{
		``,
		`{}`,
		`{"tasks": []}`,
		`{"tasks": [{"period_ms":5, "wcet_ms":3, "m":0, "k":2}]}`,
		`{"tasks": [{"period_ms":5, "wcet_ms":3, "m":1, "k":2}], "bogus": 1}`,
	}
	for _, doc := range cases {
		if _, err := LoadSet(strings.NewReader(doc)); err == nil {
			t.Errorf("LoadSet(%q) accepted garbage", doc)
		}
	}
}

func TestParseApproach(t *testing.T) {
	for name, want := range map[string]Approach{
		"st": ST, "dp": DP, "greedy": Greedy, "selective": Selective, "sel": Selective,
		"MKSS-ST": ST, "MKSS-selective": Selective,
	} {
		got, err := ParseApproach(name)
		if err != nil || got != want {
			t.Errorf("ParseApproach(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseApproach("edf"); err == nil {
		t.Error("unknown approach accepted")
	}
}

func TestGenerateTaskSets(t *testing.T) {
	sets := GenerateTaskSets(0.3, 0.4, 4, 11)
	if len(sets) != 4 {
		t.Fatalf("got %d sets", len(sets))
	}
	for _, s := range sets {
		u := s.MKUtilization()
		if u < 0.3 || u >= 0.4 {
			t.Errorf("utilization %v outside bucket", u)
		}
		if !RPatternSchedulable(s) {
			t.Error("unschedulable set returned")
		}
	}
}

// TestTheorem1Property is the repository's headline property test: for
// randomly generated schedulable sets (the premise of Theorem 1) and no
// faults, MKSS-selective satisfies every (m,k) constraint, and so do the
// static baselines.
func TestTheorem1Property(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation in -short mode")
	}
	for _, bucket := range [][2]float64{{0.2, 0.3}, {0.4, 0.5}, {0.6, 0.7}} {
		sets := GenerateTaskSets(bucket[0], bucket[1], 6, 17)
		for si, s := range sets {
			for _, a := range Approaches() {
				res, err := Simulate(s, a, RunConfig{HorizonMS: 400})
				if err != nil {
					t.Fatalf("bucket %v set %d %v: %v", bucket, si, a, err)
				}
				if !res.MKSatisfied() {
					t.Errorf("bucket %v set %d: %v violated (m,k); violations %v",
						bucket, si, a, res.ViolationAt)
				}
			}
		}
	}
}

// TestSelectiveNeverWorseThanST: on fault-free schedulable workloads the
// selective scheme never consumes more active energy than the concurrent
// static reference.
func TestSelectiveNeverWorseThanST(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation in -short mode")
	}
	sets := GenerateTaskSets(0.3, 0.6, 10, 23)
	for si, s := range sets {
		st, err := Simulate(s, ST, RunConfig{HorizonMS: 500})
		if err != nil {
			t.Fatal(err)
		}
		sel, err := Simulate(s, Selective, RunConfig{HorizonMS: 500})
		if err != nil {
			t.Fatal(err)
		}
		if sel.ActiveEnergy() > st.ActiveEnergy()+1e-9 {
			t.Errorf("set %d: selective %.2f > ST %.2f", si, sel.ActiveEnergy(), st.ActiveEnergy())
		}
	}
}

// TestEnergyConservation: active+idle+sleep+dead per processor must
// exactly tile the horizon on every approach and scenario.
func TestEnergyConservation(t *testing.T) {
	set := NewSet(NewTask(10, 10, 3, 2, 3), NewTask(15, 15, 4, 1, 2))
	for _, a := range Approaches() {
		for _, sc := range []Scenario{NoFault, PermanentOnly, PermanentAndTransient} {
			res, err := Simulate(set, a, RunConfig{HorizonMS: 300, Scenario: sc, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			for p, en := range res.PerProc {
				if en.Span() != res.Horizon {
					t.Errorf("%v/%v proc %d: span %v != horizon %v", a, sc, p, en.Span(), res.Horizon)
				}
			}
		}
	}
}

// TestTraceVerificationAcrossApproaches: structural trace invariants hold
// for random seeds and all approaches.
func TestTraceVerificationAcrossApproaches(t *testing.T) {
	set := NewSet(NewTask(10, 10, 3, 2, 3), NewTask(15, 15, 4, 1, 2), NewTask(20, 20, 5, 2, 5))
	for _, a := range Approaches() {
		for seed := uint64(0); seed < 5; seed++ {
			res, err := Simulate(set, a, RunConfig{
				HorizonMS:   240,
				Scenario:    PermanentOnly,
				Seed:        seed,
				RecordTrace: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if problems := VerifyTrace(set, res); len(problems) > 0 {
				t.Errorf("%v seed %d: %v", a, seed, problems)
			}
		}
	}
}

// TestSimulateDeterminism: identical configs give identical results.
func TestSimulateDeterminism(t *testing.T) {
	set := motivationSet()
	f := func(seed uint64) bool {
		a, err := Simulate(set, Selective, RunConfig{HorizonMS: 100, Scenario: PermanentAndTransient, Seed: seed, TransientRate: 0.01})
		if err != nil {
			return false
		}
		b, err := Simulate(set, Selective, RunConfig{HorizonMS: 100, Scenario: PermanentAndTransient, Seed: seed, TransientRate: 0.01})
		if err != nil {
			return false
		}
		return a.ActiveEnergy() == b.ActiveEnergy() && a.Counters == b.Counters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPermanentFaultSurvival: with only a permanent fault (no
// transients), every approach keeps all (m,k) constraints on schedulable
// sets — the reliability guarantee of the architecture.
func TestPermanentFaultSurvival(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation in -short mode")
	}
	sets := GenerateTaskSets(0.3, 0.5, 5, 31)
	for si, s := range sets {
		for _, a := range []Approach{ST, DP, Selective} {
			for seed := uint64(0); seed < 4; seed++ {
				res, err := Simulate(s, a, RunConfig{HorizonMS: 400, Scenario: PermanentOnly, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if !res.MKSatisfied() {
					t.Errorf("set %d %v seed %d: (m,k) violated after permanent fault", si, a, seed)
				}
			}
		}
	}
}

func TestPostponementAtLeastPromotion(t *testing.T) {
	sets := GenerateTaskSets(0.2, 0.5, 5, 41)
	for _, s := range sets {
		ys := PromotionTimes(s)
		thetas, err := PostponementIntervals(s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ys {
			if thetas[i] < ys[i] {
				t.Errorf("theta%d = %v < Y%d = %v", i+1, thetas[i], i+1, ys[i])
			}
		}
	}
}

func TestSweepSmoke(t *testing.T) {
	cfg := DefaultSweepConfig(NoFault)
	cfg.SetsPerInterval = 2
	cfg.MaxCandidates = 300
	cfg.Intervals = workload.Intervals(0.3, 0.5, 0.1)
	rep, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if len(row.Sets) == 0 {
			continue
		}
		if math.Abs(row.NormMean[ST]-1) > 1e-9 {
			t.Errorf("ST must normalize to 1, got %v", row.NormMean[ST])
		}
		if row.NormMean[Selective] > 1 {
			t.Errorf("selective normalized %v > 1", row.NormMean[Selective])
		}
	}
	if !strings.Contains(rep.Table(), "MKSS-selective") {
		t.Error("table missing selective column")
	}
	if !strings.HasPrefix(rep.CSV(), "util_mid,sets,") {
		t.Errorf("CSV header: %q", strings.Split(rep.CSV(), "\n")[0])
	}
}

func TestVerifyPostponement(t *testing.T) {
	s := NewSet(NewTask(10, 10, 3, 2, 3), NewTask(15, 15, 8, 1, 2))
	violations, err := VerifyPostponement(s, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("violations: %v", violations)
	}
	// Generated schedulable sets must also verify clean.
	for _, gs := range GenerateTaskSets(0.3, 0.5, 4, 51) {
		v, err := VerifyPostponement(gs, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if len(v) != 0 {
			t.Errorf("generated set: %v", v)
		}
	}
}
