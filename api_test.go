// Tests for the public API surface hardened in this PR: LoadSet's
// field-path validation errors and the canonical approach name table.
package repro

import (
	"strings"
	"testing"
)

func TestLoadSetFieldPathErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error, anchored at the field path
	}{
		{"nan period", `{"tasks":[{"period_ms":null,"wcet_ms":1,"m":1,"k":2}]}`,
			"tasks[0].period_ms: is missing or zero"},
		{"negative period", `{"tasks":[{"period_ms":-5,"wcet_ms":1,"m":1,"k":2}]}`,
			"tasks[0].period_ms: is negative"},
		{"negative deadline", `{"tasks":[{"period_ms":5,"deadline_ms":-4,"wcet_ms":1,"m":1,"k":2}]}`,
			"tasks[0].deadline_ms: is negative"},
		{"negative wcet", `{"tasks":[{"period_ms":5,"wcet_ms":-1,"m":1,"k":2}]}`,
			"tasks[0].wcet_ms: is negative"},
		{"zero wcet", `{"tasks":[{"period_ms":5,"m":1,"k":2}]}`,
			"tasks[0].wcet_ms: is missing or zero"},
		{"zero k", `{"tasks":[{"period_ms":5,"wcet_ms":1,"m":1,"k":0}]}`,
			"tasks[0].k: must be positive"},
		{"negative k", `{"tasks":[{"period_ms":5,"wcet_ms":1,"m":1,"k":-3}]}`,
			"tasks[0].k: must be positive"},
		{"zero m", `{"tasks":[{"period_ms":5,"wcet_ms":1,"m":0,"k":2}]}`,
			"tasks[0].m: must be positive"},
		{"m exceeds k", `{"tasks":[{"period_ms":5,"wcet_ms":1,"m":3,"k":2}]}`,
			"tasks[0].m: exceeds k (3 > 2)"},
		{"second task flagged", `{"tasks":[{"period_ms":5,"wcet_ms":1,"m":1,"k":2},{"period_ms":5,"wcet_ms":1,"m":5,"k":4}]}`,
			"tasks[1].m: exceeds k (5 > 4)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadSet(strings.NewReader(tc.json))
			if err == nil {
				t.Fatalf("LoadSet accepted %s", tc.json)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// JSON can smuggle NaN/Inf only via strings, which float64 fields reject,
// so the NaN/Inf branches are exercised through the spec type directly at
// the internal boundary LoadSet uses.
func TestLoadSetLargeFiniteValuesAccepted(t *testing.T) {
	s, err := LoadSet(strings.NewReader(
		`{"tasks":[{"period_ms":1e6,"wcet_ms":1,"m":1,"k":2}]}`))
	if err != nil {
		t.Fatalf("finite large period rejected: %v", err)
	}
	if s.N() != 1 {
		t.Fatalf("n = %d", s.N())
	}
}

func TestParseApproachCanonicalTable(t *testing.T) {
	all := []Approach{ST, DP, Greedy, Selective, DPBackground, DBP}
	for _, a := range all {
		name := a.String()
		// String → Parse round-trip, case-insensitively.
		for _, form := range []string{name, strings.ToLower(name), strings.ToUpper(name), " " + name + " "} {
			got, err := ParseApproach(form)
			if err != nil {
				t.Errorf("ParseApproach(%q): %v", form, err)
				continue
			}
			if got != a {
				t.Errorf("ParseApproach(%q) = %v, want %v", form, got, a)
			}
		}
		// MarshalText/UnmarshalText round-trip.
		text, err := a.MarshalText()
		if err != nil {
			t.Fatalf("%v MarshalText: %v", a, err)
		}
		if string(text) != name {
			t.Errorf("%v MarshalText = %q, want %q", a, text, name)
		}
		var back Approach
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if back != a {
			t.Errorf("UnmarshalText(%q) = %v, want %v", text, back, a)
		}
	}
	// Short CLI aliases, with underscore/dash interchange.
	aliases := map[string]Approach{
		"st": ST, "dp": DP, "greedy": Greedy, "selective": Selective,
		"sel": Selective, "dp-background": DPBackground, "dpbg": DPBackground,
		"dp_background": DPBackground, "MKSS_selective": Selective,
		"dbp": DBP, "distance": DBP, "mkss-dbp": DBP, "MKSS_DBP": DBP,
	}
	for in, want := range aliases {
		got, err := ParseApproach(in)
		if err != nil {
			t.Errorf("ParseApproach(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseApproach(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseApproach("edf"); err == nil {
		t.Error("ParseApproach accepted edf")
	}
	names := ApproachNames()
	if len(names) != len(all) {
		t.Fatalf("ApproachNames = %v, want %d entries", names, len(all))
	}
	for i, a := range all {
		if names[i] != a.String() {
			t.Errorf("ApproachNames[%d] = %q, want %q", i, names[i], a)
		}
	}
}

func TestParseScenario(t *testing.T) {
	cases := map[string]Scenario{
		"":                      NoFault,
		"none":                  NoFault,
		"no-fault":              NoFault,
		"NONE":                  NoFault,
		"permanent":             PermanentOnly,
		"Permanent":             PermanentOnly,
		"permanent+transient":   PermanentAndTransient,
		"both":                  PermanentAndTransient,
		" permanent+transient ": PermanentAndTransient,
	}
	for in, want := range cases {
		got, err := ParseScenario(in)
		if err != nil {
			t.Errorf("ParseScenario(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseScenario(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseScenario("meteor"); err == nil {
		t.Error("ParseScenario accepted meteor")
	}
}
